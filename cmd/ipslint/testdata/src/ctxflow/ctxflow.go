// Package ctxflow is ipslint test corpus: blocking work (//ips:blocking)
// reachable from a ctx-holding caller without that ctx flowing in.
package ctxflow

import "context"

// heavySolve stands in for the long-running kernels (mp.SelfJoin,
// dist.Batch, SVM training).
//
//ips:blocking
func heavySolve(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += i
	}
	return total
}

// heavySolveNoCtx is the convenience wrapper that smuggles in Background.
func heavySolveNoCtx(n int) int {
	return heavySolve(context.Background(), n)
}

func dropCtxDirect(ctx context.Context, n int) int {
	return heavySolve(context.Background(), n) // want "blocking call to ctxflow.heavySolve without the caller's ctx"
}

func dropCtxViaWrapper(ctx context.Context, n int) int {
	return heavySolveNoCtx(n) // want "reaches blocking ctxflow.heavySolve without the caller's ctx"
}

type trainer struct{ iters int }

//ips:blocking
func (t *trainer) train(ctx context.Context) int {
	return heavySolve(ctx, t.iters)
}

func dropCtxMethod(ctx context.Context, t *trainer) int {
	return t.train(context.TODO()) // want "blocking call to .ctxflow.trainer..train without the caller's ctx"
}

// Passing the live ctx through is the contract.
func passesCtx(ctx context.Context, n int) int {
	return heavySolve(ctx, n)
}

// A caller with no ctx of its own has nothing to flow; its own callers are
// judged instead.
func noCtxCaller(n int) int {
	return heavySolveNoCtx(n)
}

// Non-blocking helpers may be called without ctx.
func cheap(n int) int { return 2 * n }

func callsCheap(ctx context.Context, n int) int {
	return heavySolve(ctx, n) + cheap(n)
}
