package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockAnalyzer forbids wall-clock reads outside internal/obs.  Run
// manifests are durations-only by contract (PR 6): every timestamp flows
// through the obs span clock so two runs of the same work diff cleanly in
// `ipsobs check`.  A stray time.Now anywhere upstream smuggles wall-clock
// state into the pipeline and breaks cross-run comparison.  Test files are
// exempt — they do not feed manifests.
var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/Since/Until outside internal/obs (manifests are durations-only by contract)",
	Run:  runWallclock,
}

// wallclockFuncs are the time package functions that read the wall clock.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallclock(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock outside internal/obs; route timing through an obs span or obs.Stopwatch", sel.Sel.Name)
			return true
		})
	}
}
