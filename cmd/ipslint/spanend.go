package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spanendAnalyzer enforces the obs span lifecycle: a span obtained from
// Child() must be ended on every path out of the function that started it.
// A leaked span never closes in the trace export, skews the Timings view,
// and pins its subtree in memory for the run's lifetime.
//
// The check is lexical, not a full CFG: a span is considered handled when
// its End/Stop is deferred, when the variable escapes (passed to a callee,
// stored, or returned — ownership moves with it), or when every return
// statement after the start is lexically preceded by an End call.  That is
// exactly the discipline the pipeline code follows; anything cleverer
// should be rewritten to be defer-shaped anyway.
var spanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "obs span started but not ended on every return path",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		parents := parentMap(file)
		nearestFunc := func(n ast.Node) ast.Node {
			for p := parents[n]; p != nil; p = parents[p] {
				switch p.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					return p
				}
			}
			return nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" || !isSpanChildCall(pass, rhs) {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				fn := nearestFunc(as)
				if fn == nil {
					continue
				}
				checkSpanVar(pass, parents, fn, obj, id)
			}
			return true
		})
	}
}

// isSpanChildCall reports whether e is a call to a method named Child whose
// result is a *Span (matched by type name, so any span-shaped API counts).
func isSpanChildCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Child" {
		return false
	}
	ptr, ok := pass.TypeOf(call).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// checkSpanVar inspects every use of the span variable within fn and
// reports starts that can leak.
func checkSpanVar(pass *Pass, parents map[ast.Node]ast.Node, fn ast.Node, obj types.Object, start *ast.Ident) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	var (
		deferred bool
		escapes  bool
		endPos   []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == start {
			return true
		}
		if pass.Info.Uses[id] != obj && pass.Info.Defs[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X != ast.Expr(id) {
				escapes = true
				return true
			}
			call, ok := parents[p].(*ast.CallExpr)
			if !ok || call.Fun != ast.Expr(p) {
				escapes = true // method value or field read: ownership unclear
				return true
			}
			if p.Sel.Name == "End" || p.Sel.Name == "Stop" {
				if _, isDefer := parents[call].(*ast.DeferStmt); isDefer {
					deferred = true
				} else {
					endPos = append(endPos, call.Pos())
				}
			}
			// Other methods (SetInt, Progress, Child, ...) are neutral.
		case *ast.AssignStmt:
			// Reassignment of the variable itself is neutral; appearing on
			// the right-hand side hands the span to something else.
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					escapes = true
				}
			}
		default:
			escapes = true
		}
		return true
	})
	if deferred || escapes {
		return
	}
	if len(endPos) == 0 {
		pass.Reportf(start.Pos(), "span %s is started but never ended; add defer %s.End()", start.Name, start.Name)
		return
	}
	// Every return after the start must be lexically preceded by an End.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false // returns inside closures exit the closure, not fn
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < start.Pos() {
			return true
		}
		covered := false
		for _, ep := range endPos {
			if ep > start.Pos() && ep < ret.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret.Pos(), "return leaks span %s (started at %s); call %s.End() before returning or defer it", start.Name, pass.Fset.Position(start.Pos()), start.Name)
		}
		return true
	})
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// parentMap records each node's syntactic parent within the file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
