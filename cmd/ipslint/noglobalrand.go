package main

import (
	"go/ast"
	"go/types"
)

// noglobalrandAnalyzer enforces the repo's determinism contract: every
// stochastic stage (IP sampling, LSH family construction, DABF hashing)
// draws from an injected, explicitly seeded *rand.Rand.  The math/rand
// global generator — and sources seeded from the clock — make runs
// irreproducible, so both are banned outside tests.
var noglobalrandAnalyzer = &Analyzer{
	Name: "noglobalrand",
	Doc:  "global math/rand functions and time-seeded sources break run-to-run determinism",
	Run:  runNoGlobalRand,
}

// randAllowed are the math/rand names that construct or type an injected
// generator rather than touching process-global state.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

func runNoGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName := pkgOf(pass, sel.X)
			if pkgName == nil {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			name := sel.Sel.Name
			if !randAllowed[name] {
				pass.Reportf(sel.Pos(), "rand.%s uses the process-global generator; draw from an injected, seeded *rand.Rand instead", name)
			}
			return true
		})
		// Second sweep: rand.NewSource / rand.New seeded from the clock.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName := pkgOf(pass, sel.X)
			if pkgName == nil {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if sel.Sel.Name != "NewSource" && sel.Sel.Name != "New" {
				return true
			}
			for _, arg := range call.Args {
				// A rand.NewSource arg of rand.New is itself scanned when
				// the walk reaches it; skip to avoid double-reporting.
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					if isel, ok := inner.Fun.(*ast.SelectorExpr); ok && isel.Sel.Name == "NewSource" {
						if pn := pkgOf(pass, isel.X); pn != nil && (pn.Imported().Path() == "math/rand" || pn.Imported().Path() == "math/rand/v2") {
							continue
						}
					}
				}
				if tn := timeNowIn(pass, arg); tn != nil {
					pass.Reportf(tn.Pos(), "rand.%s seeded from the clock is nondeterministic; inject a fixed seed", sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// pkgOf resolves an expression to the *types.PkgName it names, or nil.
func pkgOf(pass *Pass, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.Info.Uses[id].(*types.PkgName)
	return pn
}

// timeNowIn returns a call to time.Now anywhere inside e, or nil.
func timeNowIn(pass *Pass, e ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pn := pkgOf(pass, sel.X); pn != nil && pn.Imported().Path() == "time" && sel.Sel.Name == "Now" {
			found = call
			return false
		}
		return true
	})
	return found
}
