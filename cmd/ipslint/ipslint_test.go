package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// wantRe matches corpus expectations: a `// want "regex"` comment expects a
// finding on its own line whose message matches the regex.  wantAboveRe is
// the variant for findings reported at comment positions (suppression
// directives), expecting the finding one line up.
var (
	wantRe      = regexp.MustCompile(`// want "([^"]+)"`)
	wantAboveRe = regexp.MustCompile(`// want-above "([^"]+)"`)
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// corpusExpectations scans every corpus file for want comments.
func corpusExpectations(t *testing.T, dirs []string) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					exps = append(exps, &expectation{file: f, line: i + 1, re: regexp.MustCompile(m[1]), raw: m[1]})
				}
				for _, m := range wantAboveRe.FindAllStringSubmatch(line, -1) {
					exps = append(exps, &expectation{file: f, line: i, re: regexp.MustCompile(m[1]), raw: m[1]})
				}
			}
		}
	}
	return exps
}

// TestCorpus runs every analyzer over the testdata corpus and requires an
// exact correspondence between findings and want comments: every finding
// must be expected, every expectation must fire.
func TestCorpus(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			abs, err := filepath.Abs(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			dirs = append(dirs, abs)
		}
	}
	sort.Strings(dirs)
	if len(dirs) < 6 {
		t.Fatalf("corpus has %d packages, want at least one per analyzer", len(dirs))
	}

	findings, err := lintDirs(newLoader(modRoot, modPath), dirs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	exps := corpusExpectations(t, dirs)

	for _, f := range findings {
		matched := false
		for _, e := range exps {
			if e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q never reported", e.file, e.line, e.raw)
		}
	}
	// Every analyzer must have fired at least once over the corpus, so a
	// silently-broken check cannot hide behind a green run.
	fired := map[string]bool{}
	for _, f := range findings {
		fired[f.Analyzer] = true
	}
	for _, a := range analyzers {
		if !fired[a.Name] {
			t.Errorf("analyzer %s reported nothing on the corpus", a.Name)
		}
	}
}

// TestRepoClean is the golden acceptance check: the repository itself must
// lint clean, so CI can gate on a non-zero exit.
func TestRepoClean(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := resolvePatterns(modRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("resolved only %d package dirs from ./..., expected the whole repo", len(dirs))
	}
	findings, err := lintDirs(newLoader(modRoot, modPath), dirs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestResolvePatterns pins the go-tool-like pattern semantics the CI step
// relies on: ./... walks the module but skips testdata (the corpus must
// never gate CI), and plain directories resolve to themselves.
func TestResolvePatterns(t *testing.T) {
	modRoot, _, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := resolvePatterns(modRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... must skip testdata, got %s", d)
		}
	}
	single, err := resolvePatterns(modRoot, []string{"internal/ts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || filepath.Base(single[0]) != "ts" {
		t.Errorf("plain dir pattern resolved to %v", single)
	}
	if _, err := resolvePatterns(modRoot, []string{"no/such/dir"}); err == nil {
		t.Error("nonexistent pattern should error")
	}
}

// TestFindingSortOrder pins the position sort the output contract promises.
func TestFindingSortOrder(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", Pos: pos("b.go", 3, 1)},
		{Analyzer: "a", Pos: pos("a.go", 9, 2)},
		{Analyzer: "a", Pos: pos("a.go", 9, 1)},
		{Analyzer: "c", Pos: pos("a.go", 2, 1)},
	}
	sortFindings(fs)
	got := make([]string, len(fs))
	for i, f := range fs {
		got[i] = f.Pos.Filename + ":" + f.Analyzer
	}
	want := []string{"a.go:c", "a.go:a", "a.go:a", "b.go:b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order %v", got)
		}
	}
	if fs[1].Pos.Column != 1 || fs[2].Pos.Column != 2 {
		t.Fatalf("column tiebreak broken: %v", fs)
	}
}

func pos(file string, line, col int) (p token.Position) {
	p.Filename, p.Line, p.Column = file, line, col
	return p
}

// TestJSONStableAndCached pins the machine-readable output contract: two
// fresh runs over the same corpus produce byte-identical JSON, and a cache
// round trip reproduces exactly the findings of the run that stored it.
func TestJSONStableAndCached(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, name := range []string{"maporder", "wallclock"} {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, abs)
	}

	run := func() []Finding {
		t.Helper()
		findings, err := lintDirs(newLoader(modRoot, modPath), dirs, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	encode := func(fs []Finding) string {
		t.Helper()
		data, err := json.MarshalIndent(toJSONFindings(modRoot, fs), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	first, second := run(), run()
	if encode(first) != encode(second) {
		t.Fatalf("two fresh runs diverged:\n%s\nvs\n%s", encode(first), encode(second))
	}
	if len(first) == 0 {
		t.Fatal("corpus run produced no findings; the stability check is vacuous")
	}

	t.Setenv("IPSLINT_CACHE_DIR", t.TempDir())
	key, err := cacheKey(modRoot, dirs, analyzers, runtime.Version())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cacheLoad(modRoot, key); ok {
		t.Fatal("cache hit before anything was stored")
	}
	if err := cacheStore(modRoot, key, first); err != nil {
		t.Fatal(err)
	}
	cached, ok := cacheLoad(modRoot, key)
	if !ok {
		t.Fatal("cache miss immediately after store")
	}
	if encode(cached) != encode(first) {
		t.Fatalf("cached findings diverge from the run that stored them:\n%s\nvs\n%s", encode(cached), encode(first))
	}
	// A different enabled set must key differently, or -checks runs would
	// poison full runs.
	subsetKey, err := cacheKey(modRoot, dirs, analyzers[:1], runtime.Version())
	if err != nil {
		t.Fatal(err)
	}
	if subsetKey == key {
		t.Fatal("cache key ignores the enabled analyzer set")
	}
}
