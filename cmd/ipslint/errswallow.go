package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errswallowAnalyzer flags silently discarded errors: `_ = f()` where f
// returns an error, and `v, _ := f()` where the blank slot is the error of
// a multi-return call.  A swallowed error turns a loud failure into a
// corrupted profile three stages later; handle it or suppress with a reason.
// Test files are exempt — helpers there fail the test through t.Fatal.
var errswallowAnalyzer = &Analyzer{
	Name: "errswallow",
	Doc:  "error assigned to _ or dropped from a multi-return call",
	Run:  runErrSwallow,
}

func runErrSwallow(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	implementsError := func(t types.Type) bool {
		if t == nil {
			return false
		}
		return types.Identical(t, errType) || types.Implements(t, errType.Underlying().(*types.Interface))
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// v, _ := f(): look the tuple element types up by position.
				tup, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if isBlank(lhs) && i < tup.Len() && implementsError(tup.At(i).Type()) {
						pass.Reportf(lhs.Pos(), "error result of %s discarded with _; handle it", callName(as.Rhs[0]))
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if !isBlank(lhs) || i >= len(as.Rhs) {
					continue
				}
				if as.Tok == token.DEFINE && len(as.Lhs) == 1 {
					// `_ := x` does not compile; unreachable, kept for shape.
					continue
				}
				if implementsError(pass.TypeOf(as.Rhs[i])) {
					pass.Reportf(lhs.Pos(), "error value of %s discarded with _; handle it", callName(as.Rhs[i]))
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short name for the call or expression being discarded.
func callName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return callName(e.Fun)
	case *ast.SelectorExpr:
		return callName(e.X) + "." + e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return callName(e.X)
	default:
		return "expression"
	}
}
