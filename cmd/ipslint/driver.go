package main

import (
	"go/ast"
	"go/types"
	"runtime"
	"sync"
)

// unit is one type-checked lint unit: a package directory's lint view
// (shippable files plus in-package tests) or its external _test package.
type unit struct {
	dir   string
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	xtest bool
}

// runPool runs fn(0..n-1) on a bounded pool and joins before returning.
// Work items are handed out through a channel so a slow item cannot stall
// unrelated ones.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// lintDirs is the full analysis pipeline: preload the module-local import
// graph, type-check every lint unit on a bounded parallel pool, run the
// per-package analyzers per unit (also in parallel), run the module-level
// analyzers over the merged call graph, then apply suppression directives
// globally and sort.  Findings are byte-identical for any worker count: all
// merges happen in deterministic unit order and the final sort breaks every
// tie.
func lintDirs(l *loader, dirs []string, enabled []*Analyzer) ([]Finding, error) {
	workers := runtime.GOMAXPROCS(0)
	if err := l.preload(dirs, workers); err != nil {
		return nil, err
	}

	// Type-check units in parallel: slots 2i / 2i+1 hold dir i's package
	// unit and external-test unit, keeping downstream order deterministic.
	units := make([]*unit, 2*len(dirs))
	errs := make([]error, len(dirs))
	runPool(workers, len(dirs), func(i int) {
		dir := dirs[i]
		path, err := l.importPathFor(dir)
		if err != nil {
			errs[i] = err
			return
		}
		pkg, files, info, err := l.check(dir, path, true)
		if err != nil {
			errs[i] = err
			return
		}
		units[2*i] = &unit{dir: dir, path: path, pkg: pkg, files: files, info: info}
		xpkg, xfiles, xinfo, err := l.checkExternalTest(dir, path)
		if err != nil {
			errs[i] = err
			return
		}
		if xpkg != nil {
			units[2*i+1] = &unit{dir: dir, path: path, pkg: xpkg, files: xfiles, info: xinfo, xtest: true}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var flat []*unit
	for _, u := range units {
		if u != nil {
			flat = append(flat, u)
		}
	}

	// Per-package analysis, one unit per work item, findings merged in unit
	// order.
	perUnit := make([][]Finding, len(flat))
	runPool(workers, len(flat), func(i int) {
		u := flat[i]
		perUnit[i] = runAnalyzers(l.fset, u.files, u.pkg, u.info, enabled)
	})
	var findings []Finding
	for _, fs := range perUnit {
		findings = append(findings, fs...)
	}

	// Module-level analysis over the merged call graph.
	mod := buildModule(l.fset, flat)
	findings = append(findings, runModuleAnalyzers(mod, enabled)...)

	// Suppression directives apply globally, so one directive set covers
	// per-package and module findings alike, and stale directives surface.
	var directives []*ignoreDirective
	for _, u := range flat {
		directives = append(directives, collectIgnores(l.fset, u.files)...)
	}
	findings = applyIgnores(findings, directives, enabled)
	sortFindings(findings)
	return findings, nil
}
