package main

import (
	"go/ast"
)

// ctxfirstAnalyzer enforces the cancellation-propagation convention behind
// the cooperative-shutdown contract.  Two rules:
//
//  1. A function that accepts a context.Context takes it as the first
//     parameter, matching the stdlib convention and keeping call sites
//     greppable (every ctx threads through position zero).
//  2. An exported non-test function that spawns goroutines accepts a
//     context.Context: a fan-out with no context is unreachable by
//     cancellation, so a timeout or Ctrl-C cannot drain its workers.
//     Deliberate process-lifetime daemons are exempted with a
//     "//lint:ignore ipslint/ctxfirst reason" directive.
var ctxfirstAnalyzer = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter; exported goroutine-spawning functions must accept one",
	Run:  runCtxfirst,
}

func runCtxfirst(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n.Type)
				if n.Name.IsExported() && !pass.IsTestFile(n.Pos()) &&
					!hasCtxParam(pass, n.Type) && containsGoStmt(n.Body) {
					pass.Reportf(n.Pos(), "exported function %s spawns goroutines but takes no context.Context, so cancellation cannot reach its workers", n.Name.Name)
				}
			case *ast.FuncLit:
				checkCtxPosition(pass, n.Type)
			}
			return true
		})
	}
}

// isCtxType reports whether the field's type is exactly context.Context.
func isCtxType(pass *Pass, field *ast.Field) bool {
	t := pass.TypeOf(field.Type)
	return t != nil && t.String() == "context.Context"
}

// checkCtxPosition reports any context.Context parameter that is not the
// first parameter of the function type.
func checkCtxPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for i, field := range ft.Params.List {
		if i == 0 {
			continue
		}
		if isCtxType(pass, field) {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
	}
}

// hasCtxParam reports whether any parameter is a context.Context.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass, field) {
			return true
		}
	}
	return false
}

// containsGoStmt reports whether the body spawns any goroutine, including
// inside nested function literals (a returned closure that spawns still
// makes the declaring function the fan-out's entry point).
func containsGoStmt(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
