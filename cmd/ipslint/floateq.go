package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// floateqAnalyzer flags == and != between floating-point operands.  The
// matrix-profile literature this repo builds on warns repeatedly that
// accumulation order perturbs low-order bits, so exact comparison of
// computed values silently corrupts profiles; use ts.ApproxEqual with an
// explicit tolerance instead.
//
// Exemptions, because they are exact by construction: comparison against
// the constant 0 or ±Inf (representable sentinels), the x != x NaN idiom,
// constant-folded comparisons, code inside functions whose name contains
// "Approx" (the epsilon helpers themselves), and _test.go files (golden
// determinism tests compare exact outputs on purpose).
var floateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floats; use ts.ApproxEqual with an explicit tolerance",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		// Named function ranges, so findings inside the epsilon helpers
		// themselves are exempt.
		type funcRange struct {
			pos, end token.Pos
			name     string
		}
		var funcs []funcRange
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				funcs = append(funcs, funcRange{fd.Pos(), fd.End(), fd.Name.Name})
			}
			return true
		})
		inApproxHelper := func(pos token.Pos) bool {
			for _, fr := range funcs {
				if fr.pos <= pos && pos < fr.end && strings.Contains(strings.ToLower(fr.name), "approx") {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if inApproxHelper(be.Pos()) {
				return true
			}
			if exactFloatSentinel(pass, be.X) || exactFloatSentinel(pass, be.Y) {
				return true
			}
			if sameExpr(pass, be.X, be.Y) { // x != x NaN check
				return true
			}
			pass.Reportf(be.OpPos, "exact %s between floats; use ts.ApproxEqual (or compare against an explicit sentinel)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactFloatSentinel reports whether e is an exactly-representable
// comparison target: the constant zero, or a math.Inf / math.NaN call.
// Non-zero constants are not exempt — 0.1 has no exact binary
// representation, so == against it is still a bug.
func exactFloatSentinel(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		v, _ := constant.Float64Val(tv.Value)
		return v == 0
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pn := pkgOf(pass, sel.X)
	return pn != nil && pn.Imported().Path() == "math" &&
		(sel.Sel.Name == "Inf" || sel.Sel.Name == "NaN")
}

// sameExpr reports whether a and b are the same identifier or selector
// chain, the x != x idiom for NaN detection.
func sameExpr(pass *Pass, a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && pass.Info.Uses[a] != nil && pass.Info.Uses[a] == pass.Info.Uses[b]
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(pass, a.X, b.X)
	}
	return false
}
