package main

import (
	"go/ast"
	"go/types"
)

// maporderAnalyzer flags `range` over a map whose nondeterministic iteration
// order can reach an ordered sink: formatted output, JSON encoding, an obs
// span attribute, or an append to a slice declared outside the loop that is
// never sorted afterwards.  This is the bug class that would break the
// byte-determinism of internal/obs manifests and the "identical output for
// any worker count" kernel contract.  The blessed idiom — collect keys, sort,
// then iterate the sorted slice — is recognised and exempt: an appended-to
// slice that is passed to a sort.* or slices.* call after the loop does not
// count as a sink.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order reaching an ordered sink (output, JSON, obs attrs, unsorted append)",
	Run:  runMaporder,
}

// maporderFmtFuncs are fmt package functions that emit output directly, in
// call order.  The Sprint* family is deliberately absent: it produces a
// value, and whether map order escapes is decided by where that value goes
// (an unsorted append is caught by the append rule; a metric key is
// order-free).
var maporderFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// maporderAttrMethods are obs span attribute setters: attributes are
// recorded in call order and serialised into manifests.
var maporderAttrMethods = map[string]bool{
	"SetAttr": true, "SetString": true, "SetInt": true, "SetFloat": true,
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, parents, rng)
			return true
		})
	}
}

// checkMapRange scans one map-range body for ordered sinks.
func checkMapRange(pass *Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt) {
	body := enclosingFuncBody(parents, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(pass, fun) {
				checkAppendSink(pass, body, rng, call)
			}
		case *ast.SelectorExpr:
			if pkg := pkgNameOf(pass, fun.X); pkg != nil {
				switch {
				case pkg.Imported().Path() == "fmt" && maporderFmtFuncs[fun.Sel.Name]:
					pass.Reportf(call.Pos(), "fmt.%s inside map iteration: map order is nondeterministic; collect and sort keys first", fun.Sel.Name)
				case pkg.Imported().Path() == "encoding/json" && (fun.Sel.Name == "Marshal" || fun.Sel.Name == "MarshalIndent"):
					pass.Reportf(call.Pos(), "json.%s inside map iteration: output order follows map order; collect and sort keys first", fun.Sel.Name)
				}
				return true
			}
			if maporderAttrMethods[fun.Sel.Name] {
				pass.Reportf(call.Pos(), "%s inside map iteration: obs attributes serialise in call order; collect and sort keys first", fun.Sel.Name)
			} else if fun.Sel.Name == "Encode" && isJSONEncoder(pass, fun.X) {
				pass.Reportf(call.Pos(), "json Encode inside map iteration: output order follows map order; collect and sort keys first")
			}
		}
		return true
	})
}

// checkAppendSink flags `dst = append(dst, ...)` inside a map range when dst
// escapes the iteration (a variable or field rooted outside the loop) and no
// sort.* or slices.* call touches it after the loop.
func checkAppendSink(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	root := rootIdent(dst)
	if root == nil {
		return
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	// A slice rooted inside the loop body dies with the iteration; only
	// escaping accumulators carry map order outward.
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return
	}
	name := types.ExprString(dst)
	if body != nil && sortedAfter(pass, body, rng, obj, name) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s inside map iteration without a later sort; map order is nondeterministic", name)
}

// rootIdent peels selectors and indexes off an append destination down to
// its base identifier: d.Notes → d, bufs[i] → bufs.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether a sort.* or slices.* call appears after the
// range statement in the enclosing function body with the destination as an
// argument: the argument must reference the same root object and, for
// field/index destinations, print identically (sort.Strings(d.Notes) clears
// an append to d.Notes but not one to d.Stages).
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgNameOf(pass, sel.X)
		if pkg == nil {
			return true
		}
		if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(ast.Unparen(arg)) != name {
				continue
			}
			argRoot := rootIdent(arg)
			if argRoot != nil && pass.Info.Uses[argRoot] == obj {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// enclosingFuncBody walks up to the nearest function literal or declaration.
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		if body := funcBody(p); body != nil {
			return body
		}
	}
	return nil
}

// pkgNameOf resolves an expression to the package it names, or nil.
func pkgNameOf(pass *Pass, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.Info.Uses[id].(*types.PkgName)
	return pn
}

// isBuiltin reports whether the identifier resolves to a universe-scope
// builtin rather than a shadowing declaration.
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// isJSONEncoder reports whether e has type *encoding/json.Encoder.
func isJSONEncoder(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	return t.String() == "*encoding/json.Encoder"
}
