package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nakedGoroutineAnalyzer polices goroutine fan-out in loops, the shape the
// worker pools in internal/ip and internal/classify use.  Two rules:
//
//  1. The goroutine body must not capture a loop variable — inputs cross
//     the spawn boundary as arguments, so which iteration a worker serves
//     is explicit and independent of scheduling (and of pre-1.22 loop-var
//     semantics).
//  2. The spawning function must hold a join for the fan-out: a
//     WaitGroup.Wait, a channel receive, or a select.  A loop of goroutines
//     with no join in scope leaks workers past the stage boundary, which
//     breaks the determinism argument ("identical pool for any worker
//     count") and the span lifecycle.
var nakedGoroutineAnalyzer = &Analyzer{
	Name: "nakedgoroutine",
	Doc:  "goroutine in a loop capturing the loop variable or spawned with no join in scope",
	Run:  runNakedGoroutine,
}

func runNakedGoroutine(pass *Pass) {
	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loopVars, inLoop, fn := enclosingLoopVars(pass, parents, g)
			if !inLoop {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && len(loopVars) > 0 {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := pass.Info.Uses[id]; obj != nil && loopVars[obj] {
						pass.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it as an argument to the goroutine's function", id.Name)
					}
					return true
				})
			}
			if fn != nil && !hasJoin(pass, funcBody(fn)) {
				pass.Reportf(g.Pos(), "goroutine launched in a loop with no join in scope (no WaitGroup.Wait, channel receive, or select in the function)")
			}
			return true
		})
	}
}

// enclosingLoopVars walks outward from the go statement, collecting the
// iteration variables of every loop between it and the enclosing function.
func enclosingLoopVars(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node) (map[types.Object]bool, bool, ast.Node) {
	vars := map[types.Object]bool{}
	inLoop := false
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.RangeStmt:
			inLoop = true
			for _, e := range []ast.Expr{p.Key, p.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			inLoop = true
			if init, ok := p.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return vars, inLoop, p
		}
	}
	return vars, inLoop, nil
}

// hasJoin reports whether the function body contains any synchronization
// that waits for spawned work: WaitGroup-style .Wait(), a channel receive
// (including range over a channel), or a select statement.
func hasJoin(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	join := false
	ast.Inspect(body, func(n ast.Node) bool {
		if join {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				join = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				join = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					join = true
				}
			}
		case *ast.SelectStmt:
			join = true
		}
		return !join
	})
	return join
}
