package main

// ctxflowAnalyzer upgrades the syntactic ctxfirst rule with a module-local
// call-graph walk.  Long-running work is marked with a //ips:blocking doc
// directive (mp.SelfJoin, dist.Batch evaluation, SVM training).  For every
// module function that takes a context.Context, each call edge from which a
// blocking function is reachable must carry the caller's ctx: otherwise
// cancellation stops at that frame and the blocking region runs to
// completion on a context the caller cannot cancel (typically a
// context.Background() smuggled in by a convenience wrapper).
//
// Edges that pass a live ctx are trusted — the callee takes a ctx parameter
// and is checked on its own.  Test files are exempt.
var ctxflowAnalyzer = &Analyzer{
	Name:      "ctxflow",
	Doc:       "blocking call (//ips:blocking) reachable without the caller's ctx flowing into it",
	RunModule: runCtxflow,
}

func runCtxflow(pass *ModulePass) {
	mod := pass.Mod
	// blockedVia memoizes, per function key, the key of a blocking function
	// reachable from it ("" when none).  DFS follows call edges regardless
	// of ctx passing: reachability is a property of the callee's body, and
	// whether THIS caller's ctx makes it there is judged at the edge.
	blockedVia := map[string]string{}
	visiting := map[string]bool{}
	var reaches func(key string) string
	reaches = func(key string) string {
		if via, ok := blockedVia[key]; ok {
			return via
		}
		if visiting[key] {
			return "" // back edge in a cycle: resolved by the outer frame
		}
		fi := mod.Funcs[key]
		if fi.Blocking {
			blockedVia[key] = key
			return key
		}
		visiting[key] = true
		via := ""
		for _, c := range fi.Calls {
			if v := reaches(c.Callee); v != "" {
				via = v
				break
			}
		}
		delete(visiting, key)
		blockedVia[key] = via
		return via
	}

	for _, key := range mod.Order {
		fi := mod.Funcs[key]
		if !fi.HasCtx || fi.TestFile {
			continue
		}
		for _, c := range fi.Calls {
			if c.PassesCtx {
				continue
			}
			callee := mod.Funcs[c.Callee]
			via := ""
			if callee.Blocking {
				via = c.Callee
			} else if v := reaches(c.Callee); v != "" {
				via = v
			}
			if via == "" {
				continue
			}
			if via == c.Callee {
				pass.Reportf(c.Pos, "blocking call to %s without the caller's ctx; pass ctx so cancellation reaches it", shortFuncName(via))
			} else {
				pass.Reportf(c.Pos, "call to %s reaches blocking %s without the caller's ctx; pass ctx so cancellation reaches it", shortFuncName(c.Callee), shortFuncName(via))
			}
		}
	}
}
