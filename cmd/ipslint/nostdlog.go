package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// nostdlogAnalyzer keeps library diagnostics on the structured path: code
// under internal/ must not print to stdout/stderr via fmt.Print*, the
// process-global log.Print*/Fatal*/Panic* logger, or the println/print
// builtins.  Those bypass the context logger (obs.Log) — they cannot be
// silenced, levelled, JSON-encoded, or correlated with the active span, and
// they corrupt the CLIs' stdout protocol.  Writer-directed formatting
// (fmt.Fprintf to an io.Writer, fmt.Sprintf) is fine; so are tests.
// Deliberate terminal output in library code takes a
// "//lint:ignore ipslint/nostdlog <reason>" directive.
var nostdlogAnalyzer = &Analyzer{
	Name: "nostdlog",
	Doc:  "fmt.Print*/log.Print*/println in internal packages bypass obs structured logging",
	Run:  runNoStdLog,
}

// stdlogBanned maps package path to its banned top-level function names.
var stdlogBanned = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func runNoStdLog(pass *Pass) {
	// Library scope only: the CLIs under cmd/ own their stdout.  Corpus
	// packages live under testdata/src/ (no /internal/ segment) but stand in
	// for library code, so they are scanned too.
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") && !strings.Contains(path, "testdata/src/") {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				pkgName := pkgOf(pass, fun.X)
				if pkgName == nil {
					return true
				}
				banned := stdlogBanned[pkgName.Imported().Path()]
				if banned == nil || !banned[fun.Sel.Name] {
					return true
				}
				pass.Reportf(fun.Pos(), "%s.%s in library code bypasses structured logging; use obs.Log(ctx) (or write to an injected io.Writer)",
					pkgName.Imported().Path(), fun.Sel.Name)
			case *ast.Ident:
				if fun.Name != "println" && fun.Name != "print" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
					return true
				}
				pass.Reportf(fun.Pos(), "builtin %s in library code bypasses structured logging; use obs.Log(ctx)", fun.Name)
			}
			return true
		})
	}
}
