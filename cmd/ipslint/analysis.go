package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.  Per-package analyzers set Run,
// which inspects a fully type-checked package (a Pass) and reports findings
// through pass.Reportf.  Cross-function analyzers set RunModule instead,
// which sees the whole module call graph at once.  The driver handles
// suppression, sorting, and printing.
type Analyzer struct {
	// Name is the short identifier used in output lines and in
	// "//lint:ignore ipslint/<name> reason" suppression directives.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Run inspects one package.  Nil for module-level analyzers.
	Run func(pass *Pass)
	// RunModule inspects the whole module (call graph included).  Nil for
	// per-package analyzers.
	RunModule func(pass *ModulePass)
}

// analyzers is the registry, in the order checks run within a package.
// Output order is positional regardless.
var analyzers = []*Analyzer{
	noglobalrandAnalyzer,
	floateqAnalyzer,
	spanendAnalyzer,
	mutexcopyAnalyzer,
	nakedGoroutineAnalyzer,
	errswallowAnalyzer,
	ctxfirstAnalyzer,
	nostdlogAnalyzer,
	maporderAnalyzer,
	wallclockAnalyzer,
	hotallocAnalyzer,
	ctxflowAnalyzer,
}

func analyzerByName(name string) *Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: ipslint/%s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass is everything an analyzer may inspect for one package: the syntax
// trees, the type information, and which files are tests.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf is Info.TypeOf with a nil guard.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ignoreRe matches suppression directives.  The reason is mandatory: a bare
// directive with no justification is itself reported.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+ipslint/(\S+)(?:\s+(.*))?$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectIgnores parses every //lint:ignore ipslint/<name> directive in the
// files.  Directives are keyed by (filename, line): a directive suppresses
// findings on its own line and on the line immediately below it (the usual
// "comment above the statement" placement).
func collectIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, &ignoreDirective{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      fset.Position(c.Pos()),
				})
			}
		}
	}
	return out
}

// applyIgnores drops findings covered by a directive and reports misuse:
// reason-less directives and directives that suppress nothing both become
// findings themselves, so suppressions cannot rot silently.  Directives for
// analyzers outside the enabled set are left alone — a -checks subset must
// not condemn suppressions it never gave a chance to fire.
func applyIgnores(findings []Finding, directives []*ignoreDirective, enabled []*Analyzer) []Finding {
	on := map[string]bool{}
	for _, a := range enabled {
		on[a.Name] = true
	}
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.analyzer != f.Analyzer || d.pos.Filename != f.Pos.Filename {
				continue
			}
			if d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1 {
				d.used = true
				if d.reason != "" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		if !on[d.analyzer] {
			continue
		}
		if d.reason == "" {
			kept = append(kept, Finding{
				Analyzer: "ignore",
				Pos:      d.pos,
				Message:  fmt.Sprintf("lint:ignore ipslint/%s directive needs a reason", d.analyzer),
			})
		} else if !d.used {
			kept = append(kept, Finding{
				Analyzer: "ignore",
				Pos:      d.pos,
				Message:  fmt.Sprintf("lint:ignore ipslint/%s suppresses nothing (stale directive?)", d.analyzer),
			})
		}
	}
	return kept
}

// runAnalyzers runs every enabled per-package analyzer over one type-checked
// package and returns the raw findings.  Suppression directives are applied
// by the driver after module-level analyzers have run, so one directive set
// covers both kinds of findings.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, enabled []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range enabled {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			analyzer: a,
			findings: &findings,
		}
		a.Run(pass)
	}
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}
