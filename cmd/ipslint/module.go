package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Module is the cross-function view the module-level analyzers run over: a
// static call graph of every function declared in the linted packages, with
// the //ips:hotpath and //ips:blocking annotations resolved.  Only calls
// between module functions are edged; calls into the standard library are
// invisible (they are, by project policy, not hot-path or ctx-blocking
// concerns — time.Now has its own analyzer).
type Module struct {
	Fset  *token.FileSet
	Funcs map[string]*FuncInfo
	// Order lists the keys of Funcs in declaration order (unit, file,
	// position), so analyzers that iterate the graph stay deterministic.
	Order []string
}

// FuncInfo is one function or method declaration in the module.
type FuncInfo struct {
	// Key is the stable cross-package identity, (*types.Func).FullName():
	// "pkg/path.Name" for functions, "(pkg/path.Recv).Name" for methods.
	Key  string
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *types.Package
	Info *types.Info
	// Hot marks a //ips:hotpath doc directive: the function (and everything
	// it statically calls) must stay allocation-free inside loops.
	Hot bool
	// Blocking marks a //ips:blocking doc directive: long-running work that
	// a caller must pass its context into.
	Blocking bool
	// HasCtx reports whether the declaration takes a context.Context.
	HasCtx bool
	// TestFile reports whether the declaration lives in a _test.go file.
	TestFile bool
	// Calls are the static call sites inside the body (nested function
	// literals attributed to this declaration) that resolve to another
	// module function.
	Calls []Call
}

// Call is one resolved module-internal call site.
type Call struct {
	Callee    string // key of the called FuncInfo
	Pos       token.Pos
	PassesCtx bool // a live context.Context value flows in as an argument
}

// ModulePass is the module-level analogue of Pass.
type ModulePass struct {
	Mod *Module

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Mod.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// hasDirective reports whether the doc comment carries the given
// //ips:<name> directive on a line of its own (trailing commentary after a
// space is allowed).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//ips:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// isCtxValue reports whether arg is a live context value rather than a fresh
// root: context.Background() and context.TODO() calls do not count as
// passing the caller's context along.
func isCtxValue(info *types.Info, arg ast.Expr) bool {
	t := info.TypeOf(arg)
	if t == nil || t.String() != "context.Context" {
		return false
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
					if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
						return false
					}
				}
			}
		}
	}
	return true
}

// calleeFunc resolves the function or method a call expression statically
// targets, or nil for calls through function values, conversions, and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// declaresCtxParam reports whether any parameter of the declaration has type
// context.Context.
func declaresCtxParam(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

// buildModule assembles the call graph from the lint units.  External-test
// units are excluded: test scaffolding is neither a hot path nor a ctxflow
// entry point.
func buildModule(fset *token.FileSet, units []*unit) *Module {
	mod := &Module{Fset: fset, Funcs: map[string]*FuncInfo{}}
	for _, u := range units {
		if u.xtest {
			continue
		}
		for _, file := range u.files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:      obj.FullName(),
					Obj:      obj,
					Decl:     fd,
					Pkg:      u.pkg,
					Info:     u.info,
					Hot:      hasDirective(fd.Doc, "hotpath"),
					Blocking: hasDirective(fd.Doc, "blocking"),
					HasCtx:   declaresCtxParam(u.info, fd),
					TestFile: strings.HasSuffix(fset.Position(fd.Pos()).Filename, "_test.go"),
				}
				collectCalls(fi, u.info)
				if _, dup := mod.Funcs[fi.Key]; !dup {
					mod.Funcs[fi.Key] = fi
					mod.Order = append(mod.Order, fi.Key)
				}
			}
		}
	}
	// Keep only call edges that land on module functions we actually
	// analyzed, so graph walks never chase dangling keys.
	for _, key := range mod.Order {
		fi := mod.Funcs[key]
		kept := fi.Calls[:0]
		for _, c := range fi.Calls {
			if _, ok := mod.Funcs[c.Callee]; ok {
				kept = append(kept, c)
			}
		}
		fi.Calls = kept
	}
	return mod
}

// collectCalls records every statically-resolved call inside the body,
// attributing calls made from nested function literals to the enclosing
// declaration (a closure handed to a worker pool still runs the enclosing
// function's work).
func collectCalls(fi *FuncInfo, info *types.Info) {
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		passesCtx := false
		for _, arg := range call.Args {
			if isCtxValue(info, arg) {
				passesCtx = true
				break
			}
		}
		fi.Calls = append(fi.Calls, Call{
			Callee:    callee.FullName(),
			Pos:       call.Pos(),
			PassesCtx: passesCtx,
		})
		return true
	})
}

// runModuleAnalyzers runs every enabled module-level analyzer over the graph
// and returns the raw findings.
func runModuleAnalyzers(mod *Module, enabled []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range enabled {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Mod: mod, analyzer: a, findings: &findings}
		a.RunModule(pass)
	}
	return findings
}
