package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// loader parses and type-checks module packages with nothing but the
// standard library: intra-module imports are resolved against the module
// tree, everything else is handed to the stdlib source importer.
//
// The loader is safe for concurrent unit type-checks once preload has run:
// preload walks the module-local import DAG bottom-up and fills the import
// cache in dependency order (parallel within each wave), so the recursive
// ImportFrom calls issued by concurrent conf.Check runs only ever hit the
// cache or the (serialised) stdlib source importer.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string

	std   types.ImporterFrom
	stdMu sync.Mutex // the source importer is not safe for concurrent use

	mu    sync.Mutex
	cache map[string]*types.Package // import view: no test files
}

func newLoader(modRoot, modPath string) *loader {
	// Force the pure-Go build variant so source-importing net/http and
	// friends never needs a working C toolchain.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*types.Package{},
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// moduleLocal reports whether path names a package inside this module.
func (l *loader) moduleLocal(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// dirFor maps a module-local import path onto its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom.  Module-internal paths map onto
// directories under the module root; everything else (the standard library)
// goes to the source importer.
func (l *loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !l.moduleLocal(path) {
		l.stdMu.Lock()
		defer l.stdMu.Unlock()
		return l.std.ImportFrom(path, l.modRoot, 0)
	}
	l.mu.Lock()
	pkg, ok := l.cache[path]
	l.mu.Unlock()
	if ok {
		return pkg, nil
	}
	// Cache miss outside preload order: load serially.  preload fills the
	// cache for every dependency of the linted dirs, so this path only runs
	// for single-goroutine callers (tests driving the loader directly).
	pkg, _, _, err := l.check(l.dirFor(path), path, false)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cache[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// moduleImportsOf parses just the import clauses of every .go file in dir
// and returns the module-local dependencies, split into the import-view
// edges (non-test files — these order the preload waves) and test-only
// extras (test files may import packages that import this one, e.g. from an
// external _test package, so they expand the load set but must not create
// readiness edges).  The package's own path is excluded.
func (l *loader) moduleImportsOf(dir, selfPath string) (nonTest, testOnly []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	seenNonTest := map[string]bool{}
	seenTest := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, nil, err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !l.moduleLocal(p) || p == selfPath {
				continue
			}
			if isTest {
				if !seenTest[p] {
					seenTest[p] = true
					testOnly = append(testOnly, p)
				}
			} else if !seenNonTest[p] {
				seenNonTest[p] = true
				nonTest = append(nonTest, p)
			}
		}
	}
	sort.Strings(nonTest)
	sort.Strings(testOnly)
	return nonTest, testOnly, nil
}

// preload fills the import cache with every module-local package the given
// directories depend on, loading independent packages in parallel.  The
// import graph is walked transitively with cheap imports-only parses, cycle
// errors are reported up front, and packages are then type-checked in
// dependency waves: a package only starts once all of its module-local
// dependencies are cached, so concurrent ImportFrom calls never race on an
// in-flight load.
func (l *loader) preload(dirs []string, workers int) error {
	// Discover the transitive module-local import set.
	deps := map[string][]string{}
	var visit func(path, dir string) error
	visit = func(path, dir string) error {
		if _, ok := deps[path]; ok {
			return nil
		}
		imps, testImps, err := l.moduleImportsOf(dir, path)
		if err != nil {
			return err
		}
		deps[path] = imps
		for _, p := range append(imps, testImps...) {
			if err := visit(p, l.dirFor(p)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return err
		}
		if err := visit(path, dir); err != nil {
			return err
		}
	}

	// Topologically order into waves; a non-empty remainder with no ready
	// package is an import cycle.
	loaded := map[string]bool{}
	remaining := make([]string, 0, len(deps))
	for p := range deps {
		remaining = append(remaining, p)
	}
	sort.Strings(remaining)
	for len(remaining) > 0 {
		var wave, rest []string
		for _, p := range remaining {
			ready := true
			for _, d := range deps[p] {
				if !loaded[d] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, p)
			} else {
				rest = append(rest, p)
			}
		}
		if len(wave) == 0 {
			return fmt.Errorf("import cycle among %s", strings.Join(rest, ", "))
		}
		errs := make([]error, len(wave))
		runPool(workers, len(wave), func(i int) {
			_, errs[i] = l.ImportFrom(wave[i], l.modRoot, 0)
		})
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("loading %s: %w", wave[i], err)
			}
		}
		for _, p := range wave {
			loaded[p] = true
		}
		remaining = rest
	}
	return nil
}

// importPathFor derives the module-relative import path of dir.
func (l *loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every .go file of dir, grouped by package clause and
// sorted by filename so runs are deterministic.
func (l *loader) parseDir(dir string) (map[string][]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	byPkg := map[string][]*ast.File{}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	return byPkg, nil
}

// check type-checks the package in dir.  With includeTests set, in-package
// _test.go files are part of the checked unit (the lint view); without, only
// the shippable files are (the import view).
func (l *loader) check(dir, importPath string, includeTests bool) (*types.Package, []*ast.File, *types.Info, error) {
	byPkg, err := l.parseDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	var pkgName string
	for name, fs := range byPkg {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkgName != "" && name != pkgName {
			return nil, nil, nil, fmt.Errorf("%s: multiple packages %s and %s", dir, pkgName, name)
		}
		pkgName = name
		files = append(files, fs...)
	}
	if pkgName == "" {
		return nil, nil, nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	if !includeTests {
		var kept []*ast.File
		for _, f := range files {
			if !strings.HasSuffix(l.fset.Position(f.Pos()).Filename, "_test.go") {
				kept = append(kept, f)
			}
		}
		files = kept
		if len(files) == 0 {
			return nil, nil, nil, fmt.Errorf("%s: only test files", dir)
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})
	return l.typeCheck(importPath, files)
}

// checkExternalTest type-checks the foo_test external test package of dir,
// if any.  It returns nils when the directory has none.
func (l *loader) checkExternalTest(dir, importPath string) (*types.Package, []*ast.File, *types.Info, error) {
	byPkg, err := l.parseDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	var name string
	for n, fs := range byPkg {
		if strings.HasSuffix(n, "_test") {
			name = n
			files = append(files, fs...)
		}
	}
	if len(files) == 0 {
		return nil, nil, nil, nil
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})
	return l.typeCheck(importPath+" ["+name+"]", files)
}

func (l *loader) typeCheck(importPath string, files []*ast.File) (*types.Package, []*ast.File, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, nil, nil, fmt.Errorf("type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// resolvePatterns expands command-line package patterns ("./...", "dir/...",
// plain directories) into the sorted list of directories to lint.
func resolvePatterns(modRoot string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || pat == "./..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(modRoot, base)
		}
		if st, err := os.Stat(base); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("package pattern %q: not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
