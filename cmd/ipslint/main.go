// Command ipslint is the project's static-analysis pass.  It enforces the
// invariants the compiler cannot see and the IPS pipeline's correctness
// rests on: determinism (all randomness flows from injected, explicitly
// seeded *rand.Rand values; no map-ordered output), concurrency hygiene
// (goroutines joined, locks never copied, obs spans ended on every return
// path, ctx flowing into blocking calls), numeric care (no naive float
// equality), and hot-path discipline (//ips:hotpath functions stay
// allocation-free inside loops; wall-clock reads live in internal/obs only).
//
// Usage:
//
//	ipslint [-list] [-checks a,b,...] [-json] [-stats] [-nocache] [packages]
//
// Package patterns follow the go tool: "./..." walks the module, a plain
// directory lints just that package.  Exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
//
// -json prints findings as a JSON array (analyzer/file/line/col/message,
// module-relative paths) for machine consumption — CI turns it into inline
// annotations.  -stats appends per-analyzer finding counts to stderr.
// Results are cached under os.UserCacheDir()/ipslint (override with
// IPSLINT_CACHE_DIR) keyed by a content hash of the module's sources, the
// toolchain, and the enabled checks; -nocache forces a fresh run.
//
// A finding is suppressed by a directive on the offending line or the line
// above it, with a mandatory reason:
//
//	//lint:ignore ipslint/<analyzer> reason
//
// The driver is stdlib-only: go/parser + go/ast + go/types, with the source
// importer standing in for compiled export data.  The module is loaded once
// into a shared type-checked package graph and analyzed with a bounded
// parallel worker pool; output is byte-identical for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array on stdout")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts to stderr after a run")
	noCache := flag.Bool("nocache", false, "skip the result cache and force a fresh analysis")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipslint [-list] [-checks a,b,...] [-json] [-stats] [-nocache] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			kind := "package"
			if a.RunModule != nil {
				kind = "module"
			}
			fmt.Printf("%-16s [%s] %s\n", a.Name, kind, a.Doc)
		}
		return
	}

	enabled := analyzers
	if *checks != "" {
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			a := analyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ipslint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			enabled = append(enabled, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	dirs, err := resolvePatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}

	var findings []Finding
	fromCache := false
	key := ""
	if !*noCache {
		key, err = cacheKey(modRoot, dirs, enabled, runtime.Version())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipslint: cache key:", err)
			key = ""
		}
		if key != "" {
			findings, fromCache = cacheLoad(modRoot, key)
		}
	}
	if !fromCache {
		findings, err = lintDirs(newLoader(modRoot, modPath), dirs, enabled)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipslint:", err)
			os.Exit(2)
		}
		if key != "" {
			if err := cacheStore(modRoot, key, findings); err != nil {
				fmt.Fprintln(os.Stderr, "ipslint: cache store:", err)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSONFindings(modRoot, findings)); err != nil {
			fmt.Fprintln(os.Stderr, "ipslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *stats {
		counts := map[string]int{}
		for _, f := range findings {
			counts[f.Analyzer]++
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "ipslint: %d finding(s) across %d analyzer(s)\n", len(findings), len(counts))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-16s %d\n", name, counts[name])
		}
	}
	if len(findings) > 0 {
		if !*stats {
			fmt.Fprintf(os.Stderr, "ipslint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
