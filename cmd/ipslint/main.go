// Command ipslint is the project's static-analysis pass.  It enforces the
// invariants the compiler cannot see and the IPS pipeline's correctness
// rests on: determinism (all randomness flows from injected, explicitly
// seeded *rand.Rand values), concurrency hygiene (goroutines joined, locks
// never copied, obs spans ended on every return path), and numeric care
// (no naive float equality).
//
// Usage:
//
//	ipslint [-list] [-checks a,b,...] [packages]
//
// Package patterns follow the go tool: "./..." walks the module, a plain
// directory lints just that package.  Exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
//
// A finding is suppressed by a directive on the offending line or the line
// above it, with a mandatory reason:
//
//	//lint:ignore ipslint/<analyzer> reason
//
// The driver is stdlib-only: go/parser + go/ast + go/types, with the source
// importer standing in for compiled export data.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipslint [-list] [-checks a,b,...] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled := analyzers
	if *checks != "" {
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			a := analyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ipslint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			enabled = append(enabled, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	dirs, err := resolvePatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	findings, err := lintDirs(newLoader(modRoot, modPath), dirs, enabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ipslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
