// Command ipsbench regenerates the tables and figures of the IPS paper's
// evaluation section (§IV).  Each experiment prints the same rows/series the
// paper reports, measured on the synthetic UCR substitute (or real UCR TSV
// files when -data is given).
//
// Usage:
//
//	ipsbench [flags] <experiment>...
//
// Experiments: table2 table3 table4 table5 table6 table7
//
//	fig9 fig10a fig10bc fig11 fig12 fig13 all
//	table6x (additional measured methods: RotF, LTS, FS)
//	fig11m  (Fig. 11 ranked on measured accuracies)
//	mp      (STOMP kernel micro-benchmark across worker counts;
//	         snapshot with -mpout BENCH_mp.json)
//	transform (shapelet-transform micro-benchmark: naive per-pair loop vs
//	         the batched distance engine; snapshot with -tfout
//	         BENCH_transform.json)
//	stream  (STOMPI streaming-append micro-benchmark: per-append cost vs
//	         full recompute; snapshot with -streamout BENCH_stream.json)
//
// Flags:
//
//	-quick       cap dataset sizes for a CI-scale run (default true)
//	-full        full-scale run (overrides -quick)
//	-data DIR    load real UCR TSV files from DIR instead of generating
//	-seed N      random seed (default 1)
//	-k N         shapelets per class (default 5)
//	-runs N      repetitions averaged for randomised methods (default 1)
//	-workers N   parallelise the IPS pipeline and STOMP kernels; results
//	             are identical for any value (default 1)
//	-timeout D   abort the suite after D (e.g. 10m); a timed-out suite exits
//	             with status 1 (0 = no limit)
//	-mpout FILE  write the "mp" experiment's kernel report as JSON
//	             (e.g. BENCH_mp.json)
//	-tfout FILE  write the "transform" experiment's report as JSON
//	             (e.g. BENCH_transform.json)
//	-streamout FILE  write the "stream" experiment's report as JSON
//	             (e.g. BENCH_stream.json)
//	-dist-kernel auto|rolling|fft  force the transform's distance kernel
//	-precision float64|float32  transform kernel arithmetic width
//	             (debugging/measurement; results identical for any value)
//
// Observability (see internal/obs):
//
//	-log-level L      structured logging to stderr: off (default), debug,
//	                  info, warn, or error
//	-log-json         emit structured logs as JSON instead of text
//	-manifest FILE    write a run manifest (config, environment, span tree,
//	                  metrics with quantiles, flight-recorder samples) when
//	                  the suite finishes; inspect/compare with cmd/ipsobs
//	-trace FILE       write every IPS run's span tree as Chrome trace_event
//	                  JSON to FILE when the suite finishes
//	-debug-addr ADDR  serve net/http/pprof, expvar, /metrics, and the flight
//	                  recorder at /debug/flight on ADDR (e.g. :6060)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ips/internal/bench"
	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/obs"
)

// setDistKernel applies the -dist-kernel flag: it forces the shapelet
// transform's distance kernel globally.  Results are identical for any
// kernel; the flag exists for measurement and debugging.
func setDistKernel(name string) error {
	k, err := dist.ParseKernel(name)
	if err != nil {
		return err
	}
	classify.DefaultKernel = k
	return nil
}

func main() {
	quick := flag.Bool("quick", true, "cap dataset sizes for a CI-scale run")
	full := flag.Bool("full", false, "full-scale run (overrides -quick)")
	data := flag.String("data", "", "directory with real UCR TSV files")
	seed := flag.Int64("seed", 1, "random seed")
	k := flag.Int("k", 5, "shapelets per class")
	runs := flag.Int("runs", 1, "repetitions averaged for randomised methods")
	workers := flag.Int("workers", 1, "parallelise the IPS pipeline and STOMP kernels (results identical for any value)")
	mpOut := flag.String("mpout", "", "write the mp experiment's kernel report as JSON to this file")
	tfOut := flag.String("tfout", "", "write the transform experiment's report as JSON to this file")
	streamOut := flag.String("streamout", "", "write the stream experiment's report as JSON to this file")
	distKernel := flag.String("dist-kernel", "auto", "force the transform's distance kernel: auto, rolling, or fft (results identical)")
	precision := flag.String("precision", "float64", "transform kernel arithmetic: float64 (byte-deterministic) or float32 (faster, approximate)")
	logLevel := flag.String("log-level", "off", "structured log level: off, debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file; inspect with ipsobs")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON of all IPS runs to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof, expvar, /metrics, and /debug/flight on this address (e.g. :6060)")
	timeout := flag.Duration("timeout", 0, "abort the suite after this long, e.g. 10m (0 = no limit)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsbench:", err)
		os.Exit(2)
	}

	ctx := obs.WithLogger(context.Background(), logger)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := setDistKernel(*distKernel); err != nil {
		fmt.Fprintln(os.Stderr, "ipsbench:", err)
		os.Exit(2)
	}
	if p, err := dist.ParsePrecision(*precision); err != nil {
		fmt.Fprintln(os.Stderr, "ipsbench:", err)
		os.Exit(2)
	} else {
		classify.DefaultPrecision = p
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ipsbench [flags] <table2|table3|table4|table5|table6|table7|fig9|fig10a|fig10bc|fig11|fig12|fig13|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var o *obs.Observer
	if *tracePath != "" || *debugAddr != "" || *manifestPath != "" {
		o = obs.New("ipsbench")
		o.Metrics().SetLogger(obs.Log(ctx))
	}
	var flight *obs.FlightRecorder
	if *manifestPath != "" || *debugAddr != "" {
		flight = obs.StartFlight(ctx, 10*time.Millisecond, 1024)
	}
	if *debugAddr != "" {
		_, addr, err := obs.ServeDebug(*debugAddr, o.Metrics(), flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipsbench: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof /debug/pprof/, metrics /metrics, flight /debug/flight)\n", addr)
	}

	h := &bench.Harness{
		Quick:   *quick && !*full,
		DataDir: *data,
		Seed:    *seed,
		K:       *k,
		Runs:    *runs,
		Out:     os.Stdout,
		Obs:     o,
		Workers: *workers,
	}

	experiments := map[string]func() error{
		"table2":  func() error { _, err := h.Table2(ctx); return err },
		"table3":  func() error { _, err := h.Table3(ctx); return err },
		"table4":  func() error { _, err := h.Table4(ctx, nil); return err },
		"table5":  func() error { _, err := h.Table5(ctx, nil); return err },
		"table6":  func() error { _, err := h.Table6(ctx, nil); return err },
		"table7":  func() error { _, err := h.Table7(ctx, nil); return err },
		"fig9":    func() error { _, err := h.Fig9(ctx, nil); return err },
		"fig10a":  func() error { _, err := h.Fig10a(ctx, nil); return err },
		"fig10bc": func() error { _, err := h.Fig10bc(ctx, nil); return err },
		"fig11":   func() error { _, err := h.Fig11(nil); return err },
		"fig12":   func() error { _, err := h.Fig12(ctx, nil); return err },
		"fig13":   func() error { _, err := h.Fig13(ctx); return err },
		"table6x": func() error { _, err := h.Table6Extended(ctx, nil); return err },
		"fig11m":  func() error { _, err := h.Fig11Measured(ctx, nil); return err },
		"params":  func() error { _, err := h.Params(ctx, nil); return err },
		"mp": func() error {
			rep, err := h.MPBench(ctx)
			if err != nil {
				return err
			}
			if *mpOut != "" {
				if err := rep.WriteJSON(*mpOut); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "kernel report written to %s\n", *mpOut)
			}
			return nil
		},
		"cote":     func() error { _, err := h.COTE(ctx, nil); return err },
		"ablation": func() error { _, err := h.Ablation(ctx, nil); return err },
		"stream": func() error {
			rep, err := h.StreamBench(ctx)
			if err != nil {
				return err
			}
			if *streamOut != "" {
				if err := rep.WriteJSON(*streamOut); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "stream report written to %s\n", *streamOut)
			}
			return nil
		},
		"transform": func() error {
			rep, err := h.TransformBench(ctx)
			if err != nil {
				return err
			}
			if *tfOut != "" {
				if err := rep.WriteJSON(*tfOut); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "transform report written to %s\n", *tfOut)
			}
			return nil
		},
	}
	order := []string{
		"table2", "table3", "table4", "table5", "table6", "table7",
		"fig9", "fig10a", "fig10bc", "fig11", "fig12", "fig13",
	}

	var names []string
	for _, arg := range flag.Args() {
		if arg == "all" {
			names = order
			break
		}
		names = append(names, arg)
	}

	writeManifest := func(runErr error) {
		if *manifestPath == "" {
			return
		}
		flight.Stop()
		o.Finish()
		man := obs.BuildManifest(o, obs.RunInfo{
			Tool: "ipsbench", Seed: *seed,
			Config: map[string]any{
				"experiments": strings.Join(names, ","),
				"quick":       *quick && !*full, "k": *k, "runs": *runs,
				"workers": *workers, "dist_kernel": *distKernel,
			},
			Err: runErr, Flight: flight,
		})
		if err := man.WriteFile(*manifestPath); err != nil {
			fmt.Fprintf(os.Stderr, "ipsbench: writing manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "manifest written to %s\n", *manifestPath)
	}

	for _, name := range names {
		run, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ipsbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		obs.Log(ctx).Info("experiment starting", "experiment", name)
		sw := obs.NewStopwatch()
		if err := run(); err != nil {
			obs.Log(ctx).Error("experiment failed", obs.ErrAttrs(err)...)
			writeManifest(err)
			if errors.Is(err, errs.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "ipsbench: %s: suite canceled (timeout %v): %v\n", name, *timeout, err)
			} else {
				fmt.Fprintf(os.Stderr, "ipsbench: %s: %v\n", name, err)
			}
			os.Exit(1)
		}
		obs.Log(ctx).Info("experiment done",
			"experiment", name, "elapsed", sw.Elapsed())
		fmt.Println()
	}

	writeManifest(nil)
	if *tracePath != "" {
		o.Finish()
		if err := o.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "ipsbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
	}
	flight.Stop()
}
