// Command ucrgen writes synthetic UCR-style datasets to disk in the UCR
// archive TSV format (<name>_TRAIN.tsv / <name>_TEST.tsv), so the other
// tools — or any UCR-compatible software — can consume them from files.
//
// Usage:
//
//	ucrgen -out /tmp/ucr                       # all 46 evaluation datasets
//	ucrgen -out /tmp/ucr GunPoint ECG200       # a selection
//
// Flags:
//
//	-out DIR        output directory (created if missing)
//	-seed N         generation seed (default 1)
//	-max-train N    cap training instances (0 = archive size)
//	-max-test N     cap test instances (0 = archive size)
//	-max-length N   cap series length (0 = archive length)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	ips "ips"
)

func main() {
	out := flag.String("out", "", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	maxTrain := flag.Int("max-train", 0, "cap training instances (0 = archive size)")
	maxTest := flag.Int("max-test", 0, "cap test instances (0 = archive size)")
	maxLength := flag.Int("max-length", 0, "cap series length (0 = archive length)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: ucrgen -out DIR [dataset...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ucrgen:", err)
		os.Exit(1)
	}

	names := flag.Args()
	if len(names) == 0 {
		for _, m := range ips.Datasets() {
			names = append(names, m.Name)
		}
	}
	cfg := ips.GenConfig{
		Seed:      *seed,
		MaxTrain:  *maxTrain,
		MaxTest:   *maxTest,
		MaxLength: *maxLength,
	}
	for _, name := range names {
		train, test, err := ips.GenerateDataset(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucrgen:", err)
			if errors.Is(err, ips.ErrUnknownDataset) {
				fmt.Fprintln(os.Stderr, "ucrgen: run without dataset arguments to list all known names")
			}
			os.Exit(1)
		}
		trainPath := filepath.Join(*out, name+"_TRAIN.tsv")
		testPath := filepath.Join(*out, name+"_TEST.tsv")
		if err := ips.WriteTSV(trainPath, train); err != nil {
			fmt.Fprintln(os.Stderr, "ucrgen:", err)
			os.Exit(1)
		}
		if err := ips.WriteTSV(testPath, test); err != nil {
			fmt.Fprintln(os.Stderr, "ucrgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d train, %d test, length %d -> %s\n",
			name, train.Len(), test.Len(), train.SeriesLen(), *out)
	}
}
