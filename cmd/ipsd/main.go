// Command ipsd is the IPS model-serving daemon: it loads trained models
// saved by `ips -save` into a versioned in-memory registry and serves
// classification and shapelet-transform requests over HTTP, with per-model
// request batching, typed backpressure, and live observability.
//
// Usage:
//
//	ipsd -model prod=model.json                        # serve one model
//	ipsd -model a=a.json -model b=b.json -addr :9090   # several models
//
// Routes:
//
//	POST   /v1/classify?model=NAME[&timeout_ms=N]   predictions for instances
//	POST   /v1/transform?model=NAME[&timeout_ms=N]  shapelet-transform features
//	POST   /v1/stream?model=NAME[&window=N]         open a streaming session
//	POST   /v1/stream?session=ID                    append points, get prediction + drift
//	DELETE /v1/stream?session=ID                    close a streaming session
//	GET    /admin/models                            registry listing
//	POST   /admin/models                            {"action":"load"|"alias"|"retire", ...}
//	GET    /healthz                                 200 serving, 503 draining
//
// Request bodies are application/json ({"instances": [[...], ...]}, or
// {"points": [...]} on the streaming route) or text/tab-separated-values
// (UCR TSV rows; the label column is ignored).  Backpressure is typed: 429
// when a model's queue is full or the streaming session/point caps are hit,
// 503 while draining or for a retired model, 504 when the request deadline
// fires.  Streaming sessions pin the model version they were created
// against, so a hot-swap never changes an open session's predictions.
//
// Flags:
//
//	-addr ADDR          listen address (default :8080)
//	-model NAME=PATH    load a model file under NAME at startup (repeatable)
//	-alias ALIAS=NAME   route ALIAS to NAME (repeatable, after -model)
//	-queue N            per-model admission queue depth (default 256)
//	-batch N            max requests coalesced into one batch (default 64)
//	-workers N          worker goroutines per model (default 1)
//	-timeout D          default per-request deadline (default 10s)
//	-max-timeout D      cap on client-requested deadlines (default 60s)
//	-max-body N         request body cap in bytes (default 16 MiB)
//	-max-streams N      concurrently open streaming sessions (default 1024)
//	-stream-points N    total points one streaming session may ingest (default 1048576)
//	-drain-timeout D    graceful shutdown budget on SIGINT/SIGTERM (default 15s)
//
// Observability (see internal/obs):
//
//	-debug-addr ADDR    serve net/http/pprof, expvar, /metrics, /metrics.json,
//	                    and the flight recorder at /debug/flight on ADDR
//	-log-level L        structured logging to stderr: off, debug, info
//	                    (default), warn, or error
//	-log-json           emit structured logs as JSON instead of text
//
// On SIGINT/SIGTERM the daemon drains: /healthz flips to 503, new eval
// requests are refused typed, in-flight and queued work completes (bounded
// by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ips/internal/dist"
	"ips/internal/obs"
	"ips/internal/serve"
)

// pairList collects repeatable NAME=VALUE flags in order.
type pairList struct {
	pairs [][2]string
	what  string
}

func (p *pairList) String() string { return "" }

func (p *pairList) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok || name == "" || val == "" {
		return fmt.Errorf("want %s, got %q", p.what, v)
	}
	p.pairs = append(p.pairs, [2]string{name, val})
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	models := &pairList{what: "NAME=PATH"}
	flag.Var(models, "model", "load a model file under NAME at startup, as NAME=PATH (repeatable)")
	aliases := &pairList{what: "ALIAS=NAME"}
	flag.Var(aliases, "alias", "route ALIAS to model NAME, as ALIAS=NAME (repeatable)")
	queue := flag.Int("queue", 256, "per-model admission queue depth")
	batch := flag.Int("batch", 64, "max requests coalesced into one batch")
	workers := flag.Int("workers", 1, "worker goroutines per model")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	maxBody := flag.Int64("max-body", 16<<20, "request body cap in bytes")
	maxStreams := flag.Int("max-streams", 1024, "concurrently open streaming sessions")
	streamPoints := flag.Int("stream-points", 1<<20, "total points one streaming session may ingest")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
	debugAddr := flag.String("debug-addr", "", "serve pprof, /metrics, and /debug/flight on this address (e.g. :6060)")
	precision := flag.String("precision", "float64", "transform kernel arithmetic: float64 (byte-deterministic) or float32 (faster, approximate)")
	logLevel := flag.String("log-level", "info", "structured log level: off, debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsd:", err)
		return 2
	}
	prec, err := dist.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsd:", err)
		return 2
	}
	if len(models.pairs) == 0 {
		fmt.Fprintln(os.Stderr, "ipsd: need at least one -model NAME=PATH")
		return 2
	}

	ctx, stop := signal.NotifyContext(obs.WithLogger(context.Background(), logger), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := obs.New("ipsd")
	s := serve.NewServer(ctx, serve.Config{
		QueueDepth:      *queue,
		MaxBatch:        *batch,
		WorkersPerModel: *workers,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxStreams:      *maxStreams,
		MaxStreamPoints: *streamPoints,
		Precision:       prec,
		Obs:             o,
	})
	for _, p := range models.pairs {
		if _, err := s.LoadFile(ctx, p[0], p[1]); err != nil {
			fmt.Fprintf(os.Stderr, "ipsd: loading %s from %s: %v\n", p[0], p[1], err)
			return 1
		}
	}
	for _, p := range aliases.pairs {
		if _, err := s.Alias(ctx, p[0], p[1]); err != nil {
			fmt.Fprintf(os.Stderr, "ipsd: alias %s=%s: %v\n", p[0], p[1], err)
			return 1
		}
	}

	var flight *obs.FlightRecorder
	if *debugAddr != "" {
		flight = obs.StartFlight(ctx, 100*time.Millisecond, 4096)
		dbg, bound, err := obs.ServeDebug(*debugAddr, o.Metrics(), flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipsd: debug server:", err)
			return 1
		}
		defer dbg.Close()
		obs.Log(ctx).Info("debug server up", "addr", bound)
	}

	mux := http.NewServeMux()
	s.Mount(mux)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsd:", err)
		return 1
	}
	obs.Log(ctx).Info("serving", "addr", ln.Addr().String(), "models", len(models.pairs))

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "ipsd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: flip admission to 503, let the listener finish
	// in-flight requests, then stop the worker pools (which flush whatever
	// is still queued), all under the drain budget.
	obs.Log(ctx).Info("draining", "budget", drainTimeout.String())
	s.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(obs.WithLogger(context.Background(), logger), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		obs.Log(ctx).Warn("listener shutdown incomplete", "err", err.Error())
	}
	if err := s.Close(shutdownCtx); err != nil {
		obs.Log(ctx).Warn("drain incomplete", "err", err.Error())
		flight.Stop()
		return 1
	}
	flight.Stop()
	obs.Log(ctx).Info("drained cleanly")
	return 0
}
