package ips

import (
	"context"

	"ips/internal/mts"
)

// Multivariate TSC support — the paper's second future-work direction,
// implemented channel-independently: shapelets are discovered per channel
// and one linear SVM classifies the concatenated per-channel transforms.
type (
	// MTSInstance is a labelled multivariate time series.
	MTSInstance = mts.Instance
	// MTSDataset is a set of labelled multivariate time series.
	MTSDataset = mts.Dataset
	// MTSModel is a trained multivariate IPS classifier.
	MTSModel = mts.Model
	// MTSGenConfig controls the synthetic multivariate generator.
	MTSGenConfig = mts.GenConfig
)

// FitMTS discovers shapelets on every channel of the multivariate training
// set and trains the joint classifier.  Cancelling ctx returns an error
// matching ErrCanceled.
func FitMTS(ctx context.Context, train *MTSDataset, opt Options) (*MTSModel, error) {
	return mts.Fit(ctx, train, opt)
}

// EvaluateMTS fits on train and returns accuracy (%) on test with the model.
func EvaluateMTS(ctx context.Context, train, test *MTSDataset, opt Options) (float64, *MTSModel, error) {
	return mts.Evaluate(ctx, train, test, opt)
}

// GenerateMTS synthesises a multivariate train/test pair for experimentation.
func GenerateMTS(cfg MTSGenConfig) (train, test *MTSDataset) {
	return mts.Generate(cfg)
}
