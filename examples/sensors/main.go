// Sensor workload: sweep the shapelet number k on a MoteStrain-style sensor
// dataset (the Fig. 12 scenario), export the data to UCR TSV files, reload
// them, and confirm the round trip — the workflow of a user bringing their
// own sensor data to the library.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	ips "ips"
)

func main() {
	ctx := context.Background()
	train, test, err := ips.GenerateDataset("MoteStrain", ips.GenConfig{MaxTest: 300, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MoteStrain-style sensor workload: %d train / %d test, length %d\n\n",
		train.Len(), test.Len(), train.SeriesLen())

	// Sweep k as Fig. 12 does: accuracy should rise and then saturate.
	fmt.Println("shapelet number sweep:")
	bestK, bestAcc := 0, 0.0
	for _, k := range []int{1, 2, 5, 10, 20} {
		opt := ips.DefaultOptions()
		opt.K = k
		opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 9, 9, 9
		acc, _, err := ips.Evaluate(ctx, train, test, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d accuracy %.1f%%\n", k, acc)
		if acc > bestAcc {
			bestK, bestAcc = k, acc
		}
	}
	fmt.Printf("best k on this workload: %d (%.1f%%)\n\n", bestK, bestAcc)

	// Export to the UCR TSV format and reload, as a user would with real
	// sensor captures.
	dir, err := os.MkdirTemp("", "sensors")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := ips.WriteTSV(filepath.Join(dir, "Mote_TRAIN.tsv"), train); err != nil {
		log.Fatal(err)
	}
	if err := ips.WriteTSV(filepath.Join(dir, "Mote_TEST.tsv"), test); err != nil {
		log.Fatal(err)
	}
	rtrain, rtest, err := ips.LoadSplit(dir, "Mote")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSV round trip: %d train / %d test instances reloaded from %s\n",
		rtrain.Len(), rtest.Len(), dir)

	opt := ips.DefaultOptions()
	opt.K = bestK
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 9, 9, 9
	acc, _, err := ips.Evaluate(ctx, rtrain, rtest, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy on reloaded data: %.1f%%\n", acc)
}
