// ECG classification: compare the IPS shapelet classifier against 1NN-ED
// and the MP baseline (BASE) on an ECG200-style workload, and print the
// confusion matrix — the domain scenario the paper's introduction motivates
// (discriminative subsequences in physiological signals).
package main

import (
	"context"
	"fmt"
	"log"

	ips "ips"
	"ips/internal/baselines"
	"ips/internal/classify"
)

func main() {
	ctx := context.Background()
	train, test, err := ips.GenerateDataset("ECG200", ips.GenConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECG200-style workload: %d train / %d test, length %d\n\n",
		train.Len(), test.Len(), train.SeriesLen())

	// IPS.
	opt := ips.DefaultOptions()
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 5, 5, 5
	ipsAcc, model, err := ips.Evaluate(ctx, train, test, opt)
	if err != nil {
		log.Fatal(err)
	}

	// 1NN-ED.
	nnAcc := classify.EvaluateNN(train.Instances, test.Instances,
		classify.NNConfig{Metric: classify.Euclidean})

	// BASE (the MP baseline the paper analyses in §II-B).
	baseAcc, err := baselines.BaseEvaluate(train, test,
		baselines.BaseConfig{K: 5}, classify.SVMConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %6.1f%%\n", "IPS", ipsAcc)
	fmt.Printf("%-12s %6.1f%%\n", "1NN-ED", nnAcc)
	fmt.Printf("%-12s %6.1f%%\n\n", "BASE", baseAcc)

	// Confusion matrix for IPS (class 0 = normal beat, 1 = ischemia-like).
	pred, err := model.Predict(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	var matrix [2][2]int
	for i, in := range test.Instances {
		matrix[in.Label][pred[i]]++
	}
	fmt.Println("IPS confusion matrix (rows = truth, cols = predicted):")
	fmt.Printf("          pred 0  pred 1\n")
	for truth := 0; truth < 2; truth++ {
		fmt.Printf("truth %d   %6d  %6d\n", truth, matrix[truth][0], matrix[truth][1])
	}

	fmt.Printf("\ndiscovery: %d candidates -> %d pruned -> %d shapelets in %.0fms\n",
		model.Discovery.PoolSize, model.Discovery.PrunedSize,
		len(model.Shapelets), model.Discovery.Timings.Total().Seconds()*1e3)
}
