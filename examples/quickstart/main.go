// Quickstart: discover shapelets on a generated UCR-style dataset, train the
// IPS classifier, and classify the test split — the minimal end-to-end use
// of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	ips "ips"
)

func main() {
	ctx := context.Background()

	// Synthesise the ItalyPowerDemand train/test splits (the real archive
	// sizes: 67 train, 1029 test, length 24, 2 classes).
	train, test, err := ips.GenerateDataset("ItalyPowerDemand", ips.GenConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Discover shapelets and train the classifier with the paper defaults:
	// k=5 shapelets per class, Q_N=10 samples of Q_S=3 instances,
	// candidate lengths {0.1..0.5}·N, L2 LSH, 3σ pruning.  Cancelling the
	// context (or a deadline) stops the run with ips.ErrCanceled.
	opt := ips.DefaultOptions()
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 7, 7, 7
	model, err := ips.Fit(ctx, train, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Classify the test set.
	pred, err := model.Predict(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, in := range test.Instances {
		if pred[i] == in.Label {
			correct++
		}
	}
	fmt.Printf("classified %d/%d test instances correctly (%.1f%%)\n",
		correct, test.Len(), 100*float64(correct)/float64(test.Len()))

	// Inspect what was discovered.
	d := model.Discovery
	fmt.Printf("pipeline: %d candidates -> %d after DABF pruning -> %d shapelets\n",
		d.PoolSize, d.PrunedSize, len(model.Shapelets))
	fmt.Printf("stage timings: generate %.0fms, prune %.0fms, select %.0fms\n",
		d.Timings.CandidateGen.Seconds()*1e3,
		d.Timings.Pruning.Seconds()*1e3,
		d.Timings.Selection.Seconds()*1e3)
	for _, s := range model.Shapelets[:2] {
		fmt.Printf("shapelet for class %d (length %d): %.2f...\n",
			s.Class, len(s.Values), s.Values[:4])
	}
}
