// Power demand interpretability case study (the paper's Fig. 13 scenario):
// the ItalyPowerDemand dataset separates summer from winter daily power
// profiles, and the discovered shapelet highlights the morning heating
// demand that distinguishes the two seasons.  This example renders the
// per-class mean profiles and overlays the best shapelet's matching window.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"

	ips "ips"
)

func main() {
	ctx := context.Background()
	train, test, err := ips.GenerateDataset("ItalyPowerDemand", ips.GenConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	opt := ips.DefaultOptions()
	opt.K = 3
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 3, 3, 3
	model, err := ips.Fit(ctx, train, opt)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Predict(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, in := range test.Instances {
		if pred[i] == in.Label {
			correct++
		}
	}
	fmt.Printf("test accuracy: %.1f%% on %d instances\n\n",
		100*float64(correct)/float64(test.Len()), test.Len())

	// Per-class mean daily profile.
	means := classMeans(train)
	labels := map[int]string{0: "summer", 1: "winter"}
	for class := 0; class < 2; class++ {
		fmt.Printf("%-6s mean profile: %s\n", labels[class], spark(means[class]))
	}
	fmt.Println()

	// The best shapelet per class and where it aligns on the class mean.
	for class := 0; class < 2; class++ {
		s := bestForClass(model.Shapelets, class)
		if s == nil {
			continue
		}
		at := bestAlignment(s.Values, means[class])
		marker := strings.Repeat(" ", at) + strings.Repeat("^", len(s.Values))
		fmt.Printf("%-6s shapelet (len %d): %s\n", labels[class], len(s.Values), spark(s.Values))
		fmt.Printf("  aligns on the %s mean at hour %d:\n", labels[class], at)
		fmt.Printf("    %s\n    %s\n", spark(means[class]), marker)
	}
	fmt.Println("\nBoth shapelets land on the early-day window where the two")
	fmt.Println("seasonal profiles diverge — the morning demand difference the")
	fmt.Println("paper uses to illustrate shapelet interpretability.")
}

func classMeans(d *ips.Dataset) map[int]ips.Series {
	sums := map[int]ips.Series{}
	counts := map[int]int{}
	for _, in := range d.Instances {
		if sums[in.Label] == nil {
			sums[in.Label] = make(ips.Series, len(in.Values))
		}
		for i, v := range in.Values {
			sums[in.Label][i] += v
		}
		counts[in.Label]++
	}
	for c, s := range sums {
		for i := range s {
			s[i] /= float64(counts[c])
		}
	}
	return sums
}

func bestForClass(shapelets []ips.Shapelet, class int) *ips.Shapelet {
	var best *ips.Shapelet
	for i := range shapelets {
		s := &shapelets[i]
		if s.Class != class {
			continue
		}
		if best == nil || s.Score > best.Score {
			best = s
		}
	}
	return best
}

// bestAlignment returns the offset where the shapelet matches the series
// best under sliding squared distance.
func bestAlignment(shapelet, series ips.Series) int {
	bestAt, bestD := 0, math.Inf(1)
	for at := 0; at+len(shapelet) <= len(series); at++ {
		var d float64
		for i, v := range shapelet {
			diff := series[at+i] - v
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			bestAt = at
		}
	}
	return bestAt
}

func spark(s ips.Series) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		return strings.Repeat(string(levels[0]), len(s))
	}
	var sb strings.Builder
	for _, v := range s {
		sb.WriteRune(levels[int((v-lo)/(hi-lo)*float64(len(levels)-1))])
	}
	return sb.String()
}
