// Multivariate classification — the paper's future-work direction,
// implemented channel-independently: shapelets are discovered per channel
// and one classifier consumes the concatenated per-channel transforms.
// The scenario: a 4-channel wearable-sensor stream where only two channels
// carry class-discriminative motion patterns and the rest are distractors.
package main

import (
	"context"
	"fmt"
	"log"

	ips "ips"
)

func main() {
	ctx := context.Background()
	train, test := ips.GenerateMTS(ips.MTSGenConfig{
		Channels:    4,
		Informative: 2, // two motion channels, two distractor channels
		Classes:     3,
		Length:      100,
		Train:       60,
		Test:        60,
		Seed:        11,
	})
	fmt.Printf("wearable-style workload: %d train / %d test, %d channels, %d classes\n\n",
		train.Len(), test.Len(), train.NumChannels(), 3)

	opt := ips.DefaultOptions()
	opt.K = 3
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 11, 11, 11
	opt.Workers = 4 // parallel per-channel discovery

	acc, model, err := ips.EvaluateMTS(ctx, train, test, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multivariate accuracy: %.1f%%\n\n", acc)

	fmt.Println("shapelets per channel:")
	for ch, shapelets := range model.ShapeletsPerChannel {
		kind := "informative"
		if ch >= 2 {
			kind = "distractor"
		}
		fmt.Printf("  channel %d (%s): %d shapelets\n", ch, kind, len(shapelets))
	}
	fmt.Println("\nDistractor channels still produce candidates (noise motifs exist),")
	fmt.Println("but the SVM learns to down-weight their features: the informative")
	fmt.Println("channels' shapelet distances carry the class signal.")
}
