// Streaming classification demo: fit a model on a UCR train split, then
// replay a test series point-by-point through ips.NewStream as if it were
// arriving live from a sensor.  Each appended point updates an incremental
// matrix profile (STOMPI — byte-identical to recomputing from scratch, at a
// fraction of the cost), a delta-evaluated shapelet transform, and the
// model's running prediction.  After the genuine series ends, the demo
// injects an anomalous burst to show the drift detector flagging that the
// generating process has changed and the model should be re-fit.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ips "ips"
)

func main() {
	ctx := context.Background()
	train, test, err := ips.GenerateDataset("ItalyPowerDemand", ips.GenConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	opt := ips.DefaultOptions()
	opt.K = 3
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 7, 7, 7
	model, err := ips.Fit(ctx, train, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Replay several test series back to back: one long "sensor feed" whose
	// regime repeats, so the drift baseline settles.
	var feed ips.Series
	label := test.Instances[0].Label
	for _, in := range test.Instances {
		if in.Label == label && len(feed) < 400 {
			feed = append(feed, in.Values...)
		}
	}

	// One ItalyPowerDemand instance is a 24-hour daily profile, so a
	// 24-point window makes the matrix profile compare whole days (the
	// ips.NewStream default — the model's shortest shapelet — is too short
	// to characterise a regime here).  Day-to-day variation within the
	// genuine regime is real, so the drift threshold sits at 4σ.
	st, err := ips.NewStreamConfig(ips.StreamConfig{
		Window:    24,
		Shapelets: model.Shapelets,
		Scaler:    model.Scaler,
		SVM:       model.SVM,
		Drift:     ips.StreamDriftConfig{Factor: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	st.Reserve(len(feed) + 48)

	fmt.Printf("streaming %d points (class %d regime), profile window 24\n\n", len(feed), label)
	var lastPred = -1
	for i, v := range feed {
		up, err := st.Append(ctx, []float64{v})
		if err != nil {
			log.Fatal(err)
		}
		if up.HasPred && up.Pred != lastPred {
			fmt.Printf("t=%4d  prediction -> class %d  (windows=%d, motif@%d d=%.3f)\n",
				i, up.Pred, up.Windows, up.Motif, up.MotifDist)
			lastPred = up.Pred
		}
		if up.Drift {
			fmt.Printf("t=%4d  DRIFT z=%.1f\n", i, up.DriftScore)
		}
	}

	// Now the sensor breaks: an amplified noise burst unlike anything in the
	// model's training regime.  The detector compares each new window's
	// nearest-neighbour distance against the stream's own history, so the
	// burst stands out no matter what the absolute scale is.
	fmt.Printf("\ninjecting anomalous burst at t=%d...\n", len(feed))
	rng := rand.New(rand.NewSource(7))
	flagged := 0
	for i := 0; i < 48; i++ {
		up, err := st.Append(ctx, []float64{25 * rng.NormFloat64()})
		if err != nil {
			log.Fatal(err)
		}
		if up.Drift {
			if flagged == 0 {
				fmt.Printf("t=%4d  DRIFT z=%.1f — behaviour departed from history, re-fit the model\n",
					len(feed)+i, up.DriftScore)
			}
			flagged++
		}
	}
	fmt.Printf("\n%d of 48 burst points flagged; final stream length %d, %d profile windows\n",
		flagged, st.N(), st.Windows())
}
