package ips

import (
	"context"
	"testing"
)

func TestPublicMTSAPI(t *testing.T) {
	train, test := GenerateMTS(MTSGenConfig{Channels: 3, Seed: 1})
	if train.NumChannels() != 3 {
		t.Fatalf("channels = %d", train.NumChannels())
	}
	opt := DefaultOptions()
	opt.K = 3
	opt.IP.QN = 5
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 2, 2, 2

	acc, model, err := EvaluateMTS(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("multivariate accuracy = %v%%", acc)
	}
	if len(model.ShapeletsPerChannel) != 3 {
		t.Fatalf("per-channel shapelets = %d", len(model.ShapeletsPerChannel))
	}
	// FitMTS path.
	m2, err := FitMTS(context.Background(), train, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != test.Len() {
		t.Fatalf("pred len = %d", len(got))
	}
}

func TestPublicWorkersDeterminism(t *testing.T) {
	train, test, err := GenerateDataset("GunPoint", GenConfig{MaxTest: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.IP.QN = 5
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 4, 4, 4

	accSeq, _, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	accPar, _, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if accSeq != accPar {
		t.Fatalf("workers changed the result: %v vs %v", accSeq, accPar)
	}
}
